GO ?= go

# bench-compare runs this many benchmark repetitions (benchstat wants >= 5
# for significance when comparing against a saved baseline).
BENCH_COUNT ?= 1

.PHONY: all build fmt-check vet test race race-shard trace-tests race-fault race-fleet ci bench bench-compare micro fuzz profile

all: build

build:
	$(GO) build ./...

# fmt-check fails (and lists the offenders) when any tracked Go file is
# not gofmt-clean, so formatting drift cannot land through CI.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-shard runs the channel-sharding contracts explicitly (and
# verbosely) under the race detector: the device- and FTL-level
# cross-channel no-shared-lock pins, the GC-vs-write-storm isolation
# stress, and the lock-free stats snapshot race. These are the tests that
# protect the per-channel flash.Device sharding; `race` runs them too,
# but a sharding regression should fail loudly and by name.
#
# It then runs the sharded-engine differential layer (serial-vs-sharded
# transcript and Result equality) across a GOMAXPROCS matrix — 1 core
# (dispatch and barriers fully interleaved), 2 cores, and the machine
# default — because engine ordering bugs hide behind scheduler timing the
# race detector only explores when real parallelism varies.
race-shard:
	$(GO) test -race -count 1 -v \
		-run 'CrossChannelNoSharedLock|SnapshotRaceWithPrograms|CrossChannelWriteStormIntegrity|GCChannelIsolationUnderWriteStorm|GCOnHostageChannelDoesNotBlockOthers' \
		./internal/flash ./internal/ftl
	GOMAXPROCS=1 $(GO) test -race -count 1 \
		-run 'Sharded|EngineWorkers|AdaptiveQuantum' ./internal/sim ./internal/core
	GOMAXPROCS=2 $(GO) test -race -count 1 \
		-run 'Sharded|EngineWorkers|AdaptiveQuantum' ./internal/sim ./internal/core
	$(GO) test -race -count 1 \
		-run 'Sharded|EngineWorkers|AdaptiveQuantum' ./internal/sim ./internal/core ./internal/experiments

# trace-tests runs the trace-replay differential layer explicitly (and
# verbosely) under the race detector: the golden-fixture and fuzz-seed
# reader tests, the open-loop playback pins at the sim/sched gates, the
# core zero-schedule bit-compatibility and QueueDelay-from-arrival pins,
# and the suite-level byte-identical rerun check. `race` runs them too,
# but a trace-replay regression should fail loudly and by name.
trace-tests:
	$(GO) test -race -count 1 -v \
		-run 'Trace|Playback|Golden|Malformed|Schedule|EqualArrivals|BurstyFixture' \
		./internal/trace ./internal/sim ./internal/sched ./internal/core ./internal/experiments

# race-fault runs the fault-injection and recovery layer explicitly (and
# verbosely) under the race detector: the deterministic fault-plan
# contracts (same seed => same decisions), the device/FTL/TEE injection
# seams, the circuit breaker's state machine, the core replay's
# retry/backoff and determinism pins (pooled stacks, engine worker
# counts, zero-plan bit-identity), the scheduler's drain-timeout
# straggler report, and the public error-taxonomy tests in the root
# package. `race` runs them too, but a recovery regression should fail
# loudly and by name.
race-fault:
	$(GO) test -race -count 1 -v \
		-run 'Fault|Injector|Breaker|Retry|Backoff|DieDeath|DieDead|MACFault|BadBlock|Retire|DrainTimeout|Sentinel|ZeroPlan|OffloadTimeout' \
		./internal/fault ./internal/flash ./internal/ftl ./internal/tee \
		./internal/sim ./internal/sched ./internal/core ./internal/experiments .

# race-fleet runs the rack-scale fleet layer explicitly (and verbosely)
# under the race detector: the rendezvous-placement contracts
# (determinism, weight proportionality, minimal disruption), the health
# monitor's telemetry scoring, the functional failover lifecycle
# (drain, migrate, re-admit, reopen), the migration data-integrity
# property tests (read-back-identical plaintext, tamper => ErrIntegrity
# through the public API), the fleet-replay determinism pins (pooled
# stacks, engine worker counts, 1-device degeneracy), and the
# experiments-level byte-identical rerun check. `race` runs them too,
# but a fleet regression should fail loudly and by name.
race-fleet:
	$(GO) test -race -count 1 -v \
		-run 'Place|Placements|ScoreTelemetry|FleetFailover|Migration|FleetReplay|OneDeviceFleet|FleetTiming|FleetReplaySummary' \
		./internal/fleet ./internal/experiments

# ci is the gate future PRs must keep green: gofmt-clean tree, clean
# build, clean vet, the named channel-sharding race tests, the
# trace-replay differential layer, the fault-injection recovery layer,
# the rack-scale fleet layer, and the full test suite (including the
# 32-tenant offload stress, the FTL stripe-contention tests, and the
# Trivium differential suite) under the race detector.
ci: fmt-check build vet race-shard trace-tests race-fault race-fleet race

# bench regenerates the committed machine-readable performance record:
# serial vs parallel experiment-suite wall time, the scheduler offload
# storm, and the Trivium/FTL microbenchmarks (see cmd/iceclave-bench and
# docs/BENCHMARKS.md for methodology and the 1-CPU caveat).
bench:
	$(GO) run ./cmd/iceclave-bench -bench-json BENCH_results.json -workers 4

# micro runs only the cipher, lock-sharding, die-pipelining,
# admission-queueing, write-storm, mee-traffic, trace-replay,
# fault-replay, fleet-replay, replay-setup, and parallel-replay
# microbenchmarks (seconds, not minutes) and prints a human summary.
# The die-pipelining, queueing, trace-replay, fault-replay, and
# fleet-replay numbers are simulated time, so they are deterministic on
# any machine.
micro:
	$(GO) run ./cmd/iceclave-bench -micro

# profile grounds hot-path claims in data: it records a CPU pprof of one
# full serial suite pass (traces pre-warmed, so the profile is replay
# work, ~7-30 s depending on scale) and prints the top-10 functions.
# Scratch outputs live under the gitignored out/ so profiling never
# litters the repo root. Inspect interactively with:
# go tool pprof out/cpu.pprof
profile:
	@mkdir -p out
	$(GO) run ./cmd/iceclave-bench -cpuprofile out/cpu.pprof
	$(GO) tool pprof -top -nodecount=10 out/cpu.pprof

# bench-compare checks the performance claims instead of asserting them:
#   - BenchmarkKeystream (bit-serial oracle vs word64 production engine,
#     same key schedule + 4 KB page unit of work) must show >= 10x.
#   - The -micro die-pipelining section (one channel's program burst on a
#     single die vs striped across its dies, in simulated time) must show
#     >= 2x overlap — failure means multi-die programs have regressed
#     toward the serialized baseline.
#   - The -micro write-storm section (program/invalidate/erase churn on
#     every flash.Device channel, one goroutine per channel vs serial,
#     wall clock) must beat the GOMAXPROCS-aware gate the micro prints:
#     >= 2x with 4+ cores, >= 0.7x on fewer (where parallel hardware is
#     absent and the gate only rejects the collapse that a re-introduced
#     cross-channel shared lock causes). See docs/BENCHMARKS.md.
#   - The -micro mee-traffic section (the same streaming scan through the
#     per-line TrafficReference and the batched TrafficModel) must show
#     >= 3x on the scan AND identical stats — the bulk hot path may be
#     fast only if it changes nothing.
#   - The -micro replay-setup section (the same replay repeated with the
#     core resource pool off and on) must show >= 2x faster setup on the
#     pooled leg AND identical run Results — a recycled, reset stack may
#     be cheap only if it is indistinguishable from a fresh one.
#   - The -micro trace-replay section (the Timing 2 open-loop scenario run
#     cold, memoized, and on a fresh suite) must report identical: true —
#     the trace-mode table must be byte-identical across memoized reruns
#     and schedule re-parses.
#   - The -micro fault-replay section must report zero-fault identical:
#     true — a replay under a fault plan whose rates are all zero must
#     produce Results struct-identical to a replay with no plan at all,
#     so the injection seams cost nothing when they inject nothing.
#   - The -micro fleet-replay section must report identical: true — a
#     1-device fleet replay must produce per-tenant Results
#     struct-identical to the bare SSD — AND the device-death sweep must
#     recover at least the committed tenant floor the micro prints, so a
#     placement, health-scoring, or migration regression that strands
#     tenants fails the gate by name.
#   - The -micro parallel-replay section (the same multi-tenant RunMulti
#     replay on the serial and the sharded virtual-time engine, wall
#     clock) must beat the GOMAXPROCS-aware gate the micro prints —
#     >= 1.5x with 4+ cores, >= 0.9x on fewer (where the gate only
#     rejects sharded-engine overhead swamping the event loop) — AND
#     report identical: true, because the sharded engine may spend cores
#     only if it changes nothing.
# Scratch outputs land under the gitignored out/. With benchstat
# installed and a saved baseline (cp out/bench_new.txt out/bench_old.txt
# before a change), it also prints an old-vs-new statistical comparison.
# See docs/BENCHMARKS.md.
bench-compare:
	@mkdir -p out
	$(GO) test -run '^$$' -bench BenchmarkKeystream -benchmem -count $(BENCH_COUNT) \
		./internal/trivium | tee out/bench_new.txt
	@awk '/BenchmarkKeystream\/bitserial/ {bit+=$$3; nbit++} \
	      /BenchmarkKeystream\/word64/    {word+=$$3; nword++} \
	      END { \
	        if (!nbit || !nword) { print "bench-compare: missing benchmark output"; exit 1 } \
	        ratio = (bit/nbit) / (word/nword); \
	        printf "trivium word64 speedup over bit-serial: %.1fx\n", ratio; \
	        if (ratio < 10) { print "FAIL: speedup below the 10x floor"; exit 1 } \
	      }' out/bench_new.txt
	@$(GO) run ./cmd/iceclave-bench -micro | tee out/micro_new.txt
	@awk -F'[()x]' '/^die pipelining:/ { ratio=$$2 } \
	      END { \
	        if (ratio == "") { print "bench-compare: missing die-pipelining output"; exit 1 } \
	        printf "die-pipelined program overlap: %.2fx\n", ratio; \
	        if (ratio+0 < 2) { print "FAIL: multi-die program throughput regressed toward the serialized baseline"; exit 1 } \
	      }' out/micro_new.txt
	@awk '/^write-storm speedup/ { ratio=$$3; gate=$$5 } \
	      END { \
	        if (ratio == "") { print "bench-compare: missing write-storm output"; exit 1 } \
	        printf "cross-channel write-storm speedup: %.2fx (gate %.2fx)\n", ratio, gate; \
	        if (ratio+0 < gate+0) { print "FAIL: cross-channel write storm below its gate - device channels are contending on a shared lock"; exit 1 } \
	      }' out/micro_new.txt
	@awk '/^mee traffic scan:/ { scan=$$NF } \
	      /^mee traffic gate/ { gate=$$4; id=$$6 } \
	      END { \
	        if (scan == "" || gate == "") { print "bench-compare: missing mee-traffic output"; exit 1 } \
	        printf "mee batched-traffic scan speedup: %.2fx (gate %.2fx, stats identical: %s)\n", scan, gate, id; \
	        if (id != "true") { print "FAIL: batched traffic model diverged from the per-line reference"; exit 1 } \
	        if (scan+0 < gate+0) { print "FAIL: batched memory-traffic scan below its gate - the sequential-run fast path has regressed toward the per-line loop"; exit 1 } \
	      }' out/micro_new.txt
	@awk '/^replay setup gate/ { gate=$$4; sp=$$6; id=$$8 } \
	      END { \
	        if (gate == "") { print "bench-compare: missing replay-setup output"; exit 1 } \
	        printf "pooled replay-setup speedup: %.2fx (gate %.2fx, stats identical: %s)\n", sp, gate, id; \
	        if (id != "true") { print "FAIL: pooled replay stack diverged from fresh allocation"; exit 1 } \
	        if (sp+0 < gate+0) { print "FAIL: pooled replay setup below its gate - the reset path has regressed toward full reconstruction"; exit 1 } \
	      }' out/micro_new.txt
	@awk '/^trace replay identical:/ { id=$$4 } \
	      END { \
	        if (id == "") { print "bench-compare: missing trace-replay output"; exit 1 } \
	        printf "trace-replay suite output identical across reruns: %s\n", id; \
	        if (id != "true") { print "FAIL: trace-mode suite output changed across memoized reruns or schedule re-parses"; exit 1 } \
	      }' out/micro_new.txt
	@awk '/^fault replay zero-fault identical:/ { id=$$5 } \
	      END { \
	        if (id == "") { print "bench-compare: missing fault-replay output"; exit 1 } \
	        printf "fault-replay zero-fault plan identical to nil plan: %s\n", id; \
	        if (id != "true") { print "FAIL: a zero-rate fault plan changed replay Results - the injection seams are not free when idle"; exit 1 } \
	      }' out/micro_new.txt
	@awk '/^fleet replay identical:/ { id=$$4 } \
	      /^fleet recovered:/ { split($$3, frac, "/"); rec=frac[1]; total=frac[2]; floor=$$6 } \
	      END { \
	        if (id == "" || rec == "") { print "bench-compare: missing fleet-replay output"; exit 1 } \
	        printf "fleet 1-device replay identical to bare SSD: %s; death sweep recovered %s/%s (floor %s)\n", id, rec, total, floor; \
	        if (id != "true") { print "FAIL: a 1-device fleet diverged from the bare SSD - the placement/failover layer is not free when idle"; exit 1 } \
	        if (rec+0 < floor+0) { print "FAIL: device-death sweep recovered fewer tenants than the committed floor"; exit 1 } \
	      }' out/micro_new.txt
	@awk '/^parallel replay speedup/ { ratio=$$4; gate=$$6 } \
	      /^parallel replay identical:/ { id=$$4 } \
	      END { \
	        if (ratio == "" || id == "") { print "bench-compare: missing parallel-replay output"; exit 1 } \
	        printf "sharded-engine replay speedup: %.2fx (gate %.2fx, results identical: %s)\n", ratio, gate, id; \
	        if (id != "true") { print "FAIL: sharded engine diverged from the serial engine - parallel replay is not bit-identical"; exit 1 } \
	        if (ratio+0 < gate+0) { print "FAIL: sharded replay below its gate - engine dispatch or barrier overhead is swamping the event loop"; exit 1 } \
	      }' out/micro_new.txt
	@if command -v benchstat >/dev/null 2>&1 && [ -f out/bench_old.txt ]; then \
		benchstat out/bench_old.txt out/bench_new.txt; \
	else \
		echo "(install benchstat and save out/bench_old.txt for old-vs-new deltas)"; \
	fi

# fuzz gives each cipher/MEE/trace/engine fuzz target a short budget
# beyond the committed regression corpus in testdata/fuzz. The Trivium
# targets differentially check the word-parallel engine against the
# bit-serial reference on every input; the traffic target does the same
# for the batched traffic model against its per-line TrafficReference
# oracle; the trace target pins that arbitrary CSV input parses to a
# typed error or a well-formed schedule, never a panic or a silent row
# drop; the sharded-engine target decodes arbitrary bytes into an event
# program and requires the serial and sharded engines to produce
# identical execution transcripts at several worker counts; the fault
# target derives arbitrary plans and requires the decision stream to be
# repeatable, probability-bounded, and panic-free at every site/ordinal.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzKeystreamRoundTrip -fuzztime=20s ./internal/trivium
	$(GO) test -run='^$$' -fuzz=FuzzEnginePageRoundTrip -fuzztime=20s ./internal/trivium
	$(GO) test -run='^$$' -fuzz=FuzzEngineWriteReadMAC -fuzztime=20s ./internal/mee
	$(GO) test -run='^$$' -fuzz=FuzzEngineCounterReplay -fuzztime=20s ./internal/mee
	$(GO) test -run='^$$' -fuzz=FuzzTrafficBatchedVsReference -fuzztime=20s ./internal/mee
	$(GO) test -run='^$$' -fuzz=FuzzTraceReader -fuzztime=20s ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzShardedEngineTranscript -fuzztime=20s ./internal/sim
	$(GO) test -run='^$$' -fuzz=FuzzFaultPlan -fuzztime=20s ./internal/fault
