GO ?= go

.PHONY: all build vet test race ci bench fuzz

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ci is the gate future PRs must keep green: clean build, clean vet, and
# the full test suite (including the 32-tenant offload stress and the
# isolation-under-concurrency tests) under the race detector.
ci: build vet race

# bench regenerates the committed machine-readable performance record:
# serial vs parallel experiment-suite wall time plus the scheduler
# offload storm (see cmd/iceclave-bench -bench-json).
bench:
	$(GO) run ./cmd/iceclave-bench -bench-json BENCH_results.json -workers 4

# fuzz gives each cipher/MEE fuzz target a short budget beyond the
# committed regression corpus in testdata/fuzz.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzKeystreamRoundTrip -fuzztime=20s ./internal/trivium
	$(GO) test -run='^$$' -fuzz=FuzzEnginePageRoundTrip -fuzztime=20s ./internal/trivium
	$(GO) test -run='^$$' -fuzz=FuzzEngineWriteReadMAC -fuzztime=20s ./internal/mee
	$(GO) test -run='^$$' -fuzz=FuzzEngineCounterReplay -fuzztime=20s ./internal/mee
