// Package iceclave is the public API of the IceClave reproduction: a
// trusted execution environment for in-storage computing (Kang et al.,
// MICRO 2021), built on a full computational-SSD simulator.
//
// The package exposes two layers:
//
//   - The functional device (SSD): a simulated flash SSD with an FTL,
//     TrustZone-style world separation, the IceClave runtime, memory
//     encryption, and the Trivium stream cipher engine. Programs offloaded
//     through OffloadCode run inside in-storage TEEs with enforced
//     isolation — cross-TEE accesses really fail, bus transfers really
//     carry ciphertext.
//
//   - The evaluation harness (internal/experiments, surfaced through the
//     cmd/iceclave-bench tool and the root benchmarks), which regenerates
//     every table and figure of the paper's evaluation.
//
// The SSD is safe for concurrent use: many tenants can OffloadCode,
// execute, and Finish from their own goroutines, and isolation holds
// mid-flight — a cross-TEE access still fails and aborts the offender
// while its neighbours keep running. Tenants pinned to different flash
// channels proceed without sharing a lock (the FTL uses per-channel
// allocator shards plus a striped mapping table; ARCHITECTURE.md draws
// the full hierarchy), and the encrypted data path runs the word-parallel
// Trivium engine at hundreds of MB/s per core. internal/sched provides
// the admission-controlled worker pool (per-tenant in-flight caps,
// priority bands, graceful drain) that production multi-tenant
// deployments put in front of Execute.
package iceclave

import (
	"fmt"

	"iceclave/internal/fault"
	"iceclave/internal/flash"
	"iceclave/internal/ftl"
	"iceclave/internal/host"
	"iceclave/internal/query"
	"iceclave/internal/tee"
)

// Options configures a simulated SSD.
type Options struct {
	// Channels is the number of flash channels (default 8, Table 3).
	Channels int
	// BlocksPerPlane scales the device capacity (default 64).
	BlocksPerPlane int
	// DRAMBytes is the controller DRAM (default 4 GB).
	DRAMBytes uint64
	// FaultPlan, when non-nil and non-zero, injects the plan's
	// deterministic faults into the device (flash read/program faults, die
	// deaths) and the runtime's read path (MAC-verification failures).
	// Faults surface from the public API as wrapped sentinels —
	// flash.ErrTransientRead, flash.ErrProgramFail, flash.ErrDieDead,
	// tee.ErrIntegrity — so callers dispatch with errors.Is. The FTL's own
	// recovery (bounded read retries, bad-block retirement and re-staging)
	// runs underneath, so only faults that exhaust it are visible here. A
	// nil or all-zero plan leaves the SSD fault-free. Plans scripting die
	// deaths outside the device geometry are rejected by Open with a
	// typed *fault.PlanError instead of silently never firing.
	FaultPlan *fault.Plan
	// CipherKey is the 10-byte Trivium key sealing this device's
	// encrypted bus (a fixed default is used when nil). A fleet gives
	// every device a distinct key, so migrating a tenant re-encrypts its
	// pages under the destination's fresh keys.
	CipherKey []byte
}

// SSD is a functional IceClave-enabled computational SSD.
type SSD struct {
	dev     *flash.Device
	ftl     *ftl.FTL
	runtime *tee.Runtime
}

// Open builds an SSD with the given options.
func Open(opts Options) (*SSD, error) {
	if opts.Channels == 0 {
		opts.Channels = 8
	}
	if opts.BlocksPerPlane == 0 {
		opts.BlocksPerPlane = 64
	}
	geo := flash.Geometry{
		Channels:        opts.Channels,
		ChipsPerChannel: 4,
		DiesPerChip:     4,
		PlanesPerDie:    2,
		BlocksPerPlane:  opts.BlocksPerPlane,
		PagesPerBlock:   64,
		PageSize:        4096,
	}
	dev, err := flash.NewDevice(geo, flash.DefaultTiming())
	if err != nil {
		return nil, err
	}
	f := ftl.New(dev, ftl.Config{})
	rt, err := tee.NewRuntime(f, tee.Options{DRAMBytes: opts.DRAMBytes, CipherKey: opts.CipherKey})
	if err != nil {
		return nil, err
	}
	if !opts.FaultPlan.Zero() {
		inj, err := fault.NewInjectorFor(opts.FaultPlan, geo.Channels, geo.DiesPerChannel())
		if err != nil {
			return nil, err
		}
		dev.SetInjector(inj)
		rt.SetFaultPlan(opts.FaultPlan)
	}
	return &SSD{dev: dev, ftl: f, runtime: rt}, nil
}

// PageSize returns the flash page size in bytes.
func (s *SSD) PageSize() int { return s.dev.Geometry().PageSize }

// LogicalPages returns the number of logical pages exposed.
func (s *SSD) LogicalPages() int64 { return s.ftl.LogicalPages() }

// Runtime exposes the IceClave runtime for advanced use (attack demos,
// lifecycle inspection).
func (s *SSD) Runtime() *tee.Runtime { return s.runtime }

// FTL exposes the flash translation layer (the secure-world component).
func (s *SSD) FTL() *ftl.FTL { return s.ftl }

// Geometry returns the device's flash geometry.
func (s *SSD) Geometry() flash.Geometry { return s.dev.Geometry() }

// FlashStats snapshots the raw device activity counters, including the
// injected fault aborts — one half of the health telemetry a fleet
// monitor scores devices from (FTL().Stats() is the other: retirement
// and retry work).
func (s *SSD) FlashStats() flash.Stats { return s.dev.Snapshot() }

// HostWrite stores data at a logical page through the host I/O path (no
// TEE involved) — how datasets land on the device.
func (s *SSD) HostWrite(lpa uint32, data []byte) error {
	_, err := s.ftl.Write(s.runtime.Now(), ftl.LPA(lpa), data)
	return err
}

// HostRead reads a logical page through the host I/O path.
func (s *SSD) HostRead(lpa uint32) ([]byte, error) {
	_, data, err := s.ftl.Read(s.runtime.Now(), ftl.LPA(lpa))
	return data, err
}

// Task is an offloaded in-storage program: a live TEE plus the
// permission-checked storage view it computes over.
type Task struct {
	ssd   *SSD
	tee   *tee.TEE
	meter query.Meter
}

// OffloadCode implements the Table 2 host API: validate the offload
// request, create a TEE, and stamp the mapping-table ID bits for the
// pages the program may touch.
func (s *SSD) OffloadCode(o host.Offload) (*Task, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	lpas := make([]ftl.LPA, len(o.LPAs))
	for i, l := range o.LPAs {
		lpas[i] = ftl.LPA(l)
	}
	env, err := s.runtime.CreateTEE(tee.Config{Binary: o.Binary, LPAs: lpas})
	if err != nil {
		return nil, err
	}
	return &Task{ssd: s, tee: env}, nil
}

// Store returns the task's storage view: a query.Store whose reads and
// writes go through the TEE's permission checks and the encrypted bus.
// Programs built on the query engine run unchanged inside the TEE.
func (t *Task) Store() query.Store { return teeStore{t} }

// TEE exposes the underlying trusted execution environment.
func (t *Task) TEE() *tee.TEE { return t.tee }

// Meter returns the work accounting accumulated by the task's programs.
func (t *Task) Meter() *query.Meter { return &t.meter }

// Finish terminates the TEE, returning the result bytes to the host (the
// GetResult flow of Figure 9).
func (t *Task) Finish(result []byte) error {
	return t.ssd.runtime.TerminateTEE(t.tee, result)
}

// teeStore adapts the TEE data path to the query engine's Store interface.
type teeStore struct{ t *Task }

func (s teeStore) PageSize() int { return s.t.ssd.PageSize() }

func (s teeStore) ReadPage(lpa uint32) ([]byte, error) {
	s.t.meter.PagesRead++
	return s.t.ssd.runtime.ReadPage(s.t.tee, ftl.LPA(lpa))
}

func (s teeStore) WritePage(lpa uint32, data []byte) error {
	s.t.meter.PagesWritten++
	return s.t.ssd.runtime.WritePage(s.t.tee, ftl.LPA(lpa), data)
}

// Program is an offloaded in-storage program body: it computes over the
// task's permission-checked store, accounts its work in the meter, and
// returns the bytes handed back to the host through GetResult.
type Program func(st query.Store, m *query.Meter) ([]byte, error)

// Execute runs the full Figure 9 offload round trip as one call:
// OffloadCode, program execution inside the TEE, TerminateTEE. A program
// error throws the TEE out (the §4.5 exception path) and is returned to
// the caller. Execute is the unit of work a sched.Scheduler dispatches
// when the SSD serves many tenants concurrently; it is safe to call from
// many goroutines at once.
func (s *SSD) Execute(o host.Offload, prog Program) ([]byte, error) {
	task, err := s.OffloadCode(o)
	if err != nil {
		return nil, err
	}
	out, err := prog(task.Store(), &task.meter)
	if err != nil {
		s.runtime.ThrowOutTEE(task.tee, err.Error())
		return nil, err
	}
	if err := task.Finish(out); err != nil {
		return nil, err
	}
	return task.TEE().Result(), nil
}

// StoreDataset serializes a generated TPC-H dataset onto the SSD through
// the host path and returns its layout — the usual prelude to offloading
// a query.
func (s *SSD) StoreDataset(ds *query.Dataset, base uint32) (*query.StoredDataset, error) {
	sd, err := ds.Store(hostStore{s}, base)
	if err != nil {
		return nil, fmt.Errorf("iceclave: storing dataset: %w", err)
	}
	return sd, nil
}

// hostStore adapts the host I/O path to query.Store for dataset loading.
type hostStore struct{ s *SSD }

func (h hostStore) PageSize() int                        { return h.s.PageSize() }
func (h hostStore) ReadPage(lpa uint32) ([]byte, error)  { return h.s.HostRead(lpa) }
func (h hostStore) WritePage(lpa uint32, d []byte) error { return h.s.HostWrite(lpa, d) }
