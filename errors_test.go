package iceclave

import (
	"errors"
	"testing"

	"iceclave/internal/fault"
	"iceclave/internal/flash"
	"iceclave/internal/ftl"
	"iceclave/internal/host"
	"iceclave/internal/mee"
	"iceclave/internal/tee"
)

// Error-taxonomy contract: every exported failure sentinel in the stack
// must be reachable through the public SSD API with errors.Is — the
// wrapping chain (%w at every layer) is part of the API. Each subtest
// drives one sentinel out of HostRead/HostWrite/Store().ReadPage.

func openWithPlan(t *testing.T, plan *fault.Plan) *SSD {
	t.Helper()
	ssd, err := Open(Options{Channels: 2, BlocksPerPlane: 8, FaultPlan: plan})
	if err != nil {
		t.Fatal(err)
	}
	return ssd
}

func TestSentinelTransientReadReachable(t *testing.T) {
	ssd := openWithPlan(t, &fault.Plan{Seed: 1, ReadTransient: 1})
	if err := ssd.HostWrite(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	_, err := ssd.HostRead(0)
	if !errors.Is(err, flash.ErrTransientRead) {
		t.Fatalf("HostRead = %v, want errors.Is ErrTransientRead", err)
	}
}

func TestSentinelProgramFailReachable(t *testing.T) {
	ssd := openWithPlan(t, &fault.Plan{Seed: 1, ProgramFail: 1})
	err := ssd.HostWrite(0, []byte("x"))
	if !errors.Is(err, flash.ErrProgramFail) {
		t.Fatalf("HostWrite = %v, want errors.Is ErrProgramFail", err)
	}
}

// allDiesDead scripts every die of every channel dead from time zero.
func allDiesDead(t *testing.T, ssd *SSD) *fault.Plan {
	t.Helper()
	geo := ssd.FTL().Device().Geometry()
	var deaths []fault.DieDeath
	for ch := 0; ch < geo.Channels; ch++ {
		for die := 0; die < geo.DiesPerChannel(); die++ {
			deaths = append(deaths, fault.DieDeath{Channel: ch, Die: die})
		}
	}
	return &fault.Plan{DieDeaths: deaths}
}

func TestSentinelDieDeadAndDeviceFullReachable(t *testing.T) {
	probe, err := Open(Options{Channels: 2, BlocksPerPlane: 8})
	if err != nil {
		t.Fatal(err)
	}
	ssd := openWithPlan(t, allDiesDead(t, probe))
	// Every program lands on a dead die; the FTL kills dies and re-stages
	// until its retry budget surfaces ErrDieDead.
	werr := ssd.HostWrite(0, []byte("x"))
	if !errors.Is(werr, flash.ErrDieDead) {
		t.Fatalf("HostWrite = %v, want errors.Is ErrDieDead", werr)
	}
	// Keep writing: once the channel has no live die left, the allocator
	// has nowhere to stage and the failure becomes ErrDeviceFull.
	for i := 0; i < 100; i++ {
		werr = ssd.HostWrite(0, []byte("x"))
		if errors.Is(werr, ftl.ErrDeviceFull) {
			return
		}
	}
	t.Fatalf("never reached ErrDeviceFull; last = %v", werr)
}

func TestSentinelIntegrityReachable(t *testing.T) {
	ssd := openWithPlan(t, &fault.Plan{Seed: 1, MACFail: 1})
	if err := ssd.HostWrite(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	task, err := ssd.OffloadCode(host.Offload{Binary: make([]byte, 64<<10), LPAs: []uint32{0}})
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := task.Store().ReadPage(0)
	if !errors.Is(rerr, tee.ErrIntegrity) {
		t.Fatalf("ReadPage = %v, want errors.Is tee.ErrIntegrity", rerr)
	}
	if !errors.Is(rerr, mee.ErrIntegrity) {
		t.Fatalf("ReadPage = %v, want errors.Is mee.ErrIntegrity too", rerr)
	}
}

func TestSentinelUnmappedAndAccessDeniedReachable(t *testing.T) {
	ssd, err := Open(Options{Channels: 2, BlocksPerPlane: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, rerr := ssd.HostRead(100); !errors.Is(rerr, ftl.ErrUnmapped) {
		t.Fatalf("HostRead of unwritten page = %v, want errors.Is ErrUnmapped", rerr)
	}
	if err := ssd.HostWrite(0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := ssd.HostWrite(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	task, err := ssd.OffloadCode(host.Offload{Binary: make([]byte, 64<<10), LPAs: []uint32{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, rerr := task.Store().ReadPage(0); !errors.Is(rerr, ftl.ErrAccessDenied) {
		t.Fatalf("cross-TEE ReadPage = %v, want errors.Is ErrAccessDenied", rerr)
	}
}

// A fault-free SSD with a zero plan behaves exactly like one opened with
// no plan at all.
func TestZeroPlanOpenIsFaultFree(t *testing.T) {
	ssd := openWithPlan(t, &fault.Plan{Seed: 9})
	if err := ssd.HostWrite(0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	data, err := ssd.HostRead(0)
	if err != nil || string(data[:2]) != "ok" {
		t.Fatalf("read = %q, %v", data[:2], err)
	}
}
