package iceclave

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"iceclave/internal/ftl"
	"iceclave/internal/host"
	"iceclave/internal/query"
	"iceclave/internal/sim"
	"iceclave/internal/tee"
)

// TestAllWorkloadsInsideTEE runs every TPC-H style program through the
// full encrypted TEE path and checks the output equals plain execution.
func TestAllWorkloadsInsideTEE(t *testing.T) {
	ssd, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds := query.GenerateTPCH(3000, 11)
	sd, err := ssd.StoreDataset(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: plain in-memory execution.
	mem := query.NewMemStore(4096)
	ds2 := query.GenerateTPCH(3000, 11)
	sd2, err := ds2.Store(mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	programs := map[string]query.Program{
		"Q1": query.Q1, "Q3": query.Q3, "Q12": query.Q12, "Q14": query.Q14,
		"Q19": query.Q19, "Arithmetic": query.Arithmetic,
		"Aggregate": query.Aggregate, "Filter": query.Filter,
	}
	for name, p := range programs {
		task, err := ssd.OffloadCode(host.Offload{
			TaskID: 9, Binary: []byte{1}, LPAs: sd.AllLPAs(4096),
		})
		if err != nil {
			t.Fatalf("%s: offload: %v", name, err)
		}
		got, err := p(task.Store(), sd, task.Meter())
		if err != nil {
			t.Fatalf("%s in TEE: %v", name, err)
		}
		var m query.Meter
		want, err := p(mem, sd2, &m)
		if err != nil {
			t.Fatalf("%s reference: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: TEE output diverges from reference", name)
		}
		if err := task.Finish([]byte(got)); err != nil {
			t.Fatalf("%s: finish: %v", name, err)
		}
	}
}

// TestTEEWriteReadBackThroughFlash pushes intermediate data through the
// full write path (FTL allocation, out-of-place writes) and reads it back
// through the encrypted bus.
func TestTEEWriteReadBackThroughFlash(t *testing.T) {
	ssd, err := Open(Options{Channels: 2, BlocksPerPlane: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ssd.HostWrite(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	task, err := ssd.OffloadCode(host.Offload{TaskID: 1, Binary: []byte{1}, LPAs: []uint32{0}})
	if err != nil {
		t.Fatal(err)
	}
	st := task.Store()
	// Write and rewrite a set of intermediate pages, then verify.
	for round := 0; round < 3; round++ {
		for p := uint32(100); p < 140; p++ {
			payload := bytes.Repeat([]byte{byte(round)<<4 | byte(p)}, 128)
			if err := st.WritePage(p, payload); err != nil {
				t.Fatalf("round %d write %d: %v", round, p, err)
			}
		}
	}
	for p := uint32(100); p < 140; p++ {
		data, err := st.ReadPage(p)
		if err != nil {
			t.Fatalf("read back %d: %v", p, err)
		}
		want := byte(2)<<4 | byte(p)
		if data[0] != want {
			t.Fatalf("page %d holds %#x, want %#x", p, data[0], want)
		}
	}
}

// TestFaultInjectionFlashPath exercises error propagation through the
// stack: reads of never-written pages and access-control violations must
// surface as errors, never as silent wrong data or panics.
func TestFaultInjectionFlashPath(t *testing.T) {
	ssd, err := Open(Options{Channels: 2, BlocksPerPlane: 8})
	if err != nil {
		t.Fatal(err)
	}
	ssd.HostWrite(0, []byte{1})
	task, err := ssd.OffloadCode(host.Offload{TaskID: 1, Binary: []byte{1}, LPAs: []uint32{0}})
	if err != nil {
		t.Fatal(err)
	}
	// Unmapped LPA: clean error.
	if _, err := task.Store().ReadPage(500); !errors.Is(err, ftl.ErrUnmapped) {
		t.Fatalf("unmapped read returned %v", err)
	}
	// Out-of-range LPA: clean error.
	huge := uint32(ssd.LogicalPages() + 10)
	if _, err := task.Store().ReadPage(huge); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	// TEE still healthy after recoverable errors.
	if task.TEE().State() != tee.StateRunning {
		t.Fatalf("TEE state %v after recoverable errors", task.TEE().State())
	}
	if _, err := task.Store().ReadPage(0); err != nil {
		t.Fatalf("TEE broken by error handling: %v", err)
	}
}

// TestAbortedTEEReleasesID verifies ID reuse after violent teardown: an
// aborted attacker's 4-bit ID returns to the pool.
func TestAbortedTEEReleasesID(t *testing.T) {
	ssd, err := Open(Options{Channels: 2, BlocksPerPlane: 8})
	if err != nil {
		t.Fatal(err)
	}
	for lpa := uint32(0); lpa < 2; lpa++ {
		ssd.HostWrite(lpa, []byte{byte(lpa)})
	}
	victim, _ := ssd.OffloadCode(host.Offload{TaskID: 1, Binary: []byte{1}, LPAs: []uint32{0}})
	attacker, _ := ssd.OffloadCode(host.Offload{TaskID: 2, Binary: []byte{1}, LPAs: []uint32{1}})
	attackerID := attacker.TEE().EID()
	attacker.Store().ReadPage(0) // violation -> abort
	if attacker.TEE().State() != tee.StateAborted {
		t.Fatal("attacker not aborted")
	}
	// A new tenant gets the recycled ID.
	next, err := ssd.OffloadCode(host.Offload{TaskID: 3, Binary: []byte{1}, LPAs: []uint32{1}})
	if err != nil {
		t.Fatal(err)
	}
	if next.TEE().EID() != attackerID {
		t.Fatalf("recycled ID = %d, want %d", next.TEE().EID(), attackerID)
	}
	_ = victim
}

// TestHostTEEInterleavingProperty randomly interleaves host writes and
// TEE reads/writes over disjoint page sets; every read must return the
// most recent write through whichever path made it.
func TestHostTEEInterleavingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		ssd, err := Open(Options{Channels: 2, BlocksPerPlane: 8})
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed)
		const hostPages, teePages = 8, 8
		// Host owns 0..7, TEE owns 8..15 (host seeds them first).
		shadow := make(map[uint32]byte)
		for p := uint32(0); p < hostPages+teePages; p++ {
			v := byte(rng.Uint32())
			if err := ssd.HostWrite(p, []byte{v}); err != nil {
				return false
			}
			shadow[p] = v
		}
		var lpas []uint32
		for p := uint32(hostPages); p < hostPages+teePages; p++ {
			lpas = append(lpas, p)
		}
		task, err := ssd.OffloadCode(host.Offload{TaskID: 1, Binary: []byte{1}, LPAs: lpas})
		if err != nil {
			return false
		}
		for i := 0; i < 120; i++ {
			switch rng.Intn(3) {
			case 0: // host writes its own page
				p := uint32(rng.Intn(hostPages))
				v := byte(rng.Uint32())
				if err := ssd.HostWrite(p, []byte{v}); err != nil {
					return false
				}
				shadow[p] = v
			case 1: // TEE writes its own page
				p := uint32(hostPages + rng.Intn(teePages))
				v := byte(rng.Uint32())
				if err := task.Store().WritePage(p, []byte{v}); err != nil {
					return false
				}
				shadow[p] = v
			default: // TEE reads its own page
				p := uint32(hostPages + rng.Intn(teePages))
				data, err := task.Store().ReadPage(p)
				if err != nil || data[0] != shadow[p] {
					return false
				}
			}
		}
		// Final sweep through both paths.
		for p := uint32(0); p < hostPages; p++ {
			data, err := ssd.HostRead(p)
			if err != nil || data[0] != shadow[p] {
				return false
			}
		}
		for p := uint32(hostPages); p < hostPages+teePages; p++ {
			data, err := task.Store().ReadPage(p)
			if err != nil || data[0] != shadow[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
